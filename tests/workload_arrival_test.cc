#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pe::workload {
namespace {

TEST(PoissonArrivals, MeanRateMatches) {
  PoissonArrivals p(250.0);
  EXPECT_DOUBLE_EQ(p.MeanRateQps(), 250.0);
  Rng rng(1);
  SimTime total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += p.NextGap(rng);
  const double rate = n / TicksToSec(total);
  EXPECT_NEAR(rate, 250.0, 5.0);
}

TEST(PoissonArrivals, GapsStrictlyPositive) {
  PoissonArrivals p(1e6);  // very high rate -> tiny gaps, still >= 1 tick
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.NextGap(rng), 1);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(-5.0), std::invalid_argument);
}

TEST(PoissonArrivals, GapsExponentialCoefficientOfVariation) {
  // Exponential gaps have CV = 1.
  PoissonArrivals p(100.0);
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = TicksToSec(p.NextGap(rng));
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(BurstyArrivals, MeanRateIsTimeWeighted) {
  BurstyArrivals b(100.0, 500.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(b.MeanRateQps(), (100.0 * 3 + 500.0 * 1) / 4.0);
}

TEST(BurstyArrivals, ProducesMoreArrivalsThanBaseAlone) {
  BurstyArrivals bursty(100.0, 1000.0, 1.0, 1.0);
  PoissonArrivals base(100.0);
  Rng r1(4), r2(4);
  SimTime bursty_total = 0, base_total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    bursty_total += bursty.NextGap(r1);
    base_total += base.NextGap(r2);
  }
  EXPECT_LT(bursty_total, base_total);
}

TEST(BurstyArrivals, RejectsBadParameters) {
  EXPECT_THROW(BurstyArrivals(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(1, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(1, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(1, 1, 1, 0), std::invalid_argument);
}

TEST(ArrivalProcess, DescribeIsInformative) {
  PoissonArrivals p(42.0);
  EXPECT_NE(p.Describe().find("poisson"), std::string::npos);
  BurstyArrivals b(1, 2, 3, 4);
  EXPECT_NE(b.Describe().find("bursty"), std::string::npos);
}

}  // namespace
}  // namespace pe::workload
