#include "workload/batch_dist.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace pe::workload {
namespace {

TEST(LogNormalBatchDist, PmfSumsToOne) {
  LogNormalBatchDist d(6.0, 0.9, 32);
  double sum = 0.0;
  for (int b = 1; b <= 32; ++b) sum += d.Pdf(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LogNormalBatchDist, ZeroOutsideRange) {
  LogNormalBatchDist d(6.0, 0.9, 32);
  EXPECT_EQ(d.Pdf(0), 0.0);
  EXPECT_EQ(d.Pdf(-3), 0.0);
  EXPECT_EQ(d.Pdf(33), 0.0);
}

TEST(LogNormalBatchDist, ModeNearMedian) {
  LogNormalBatchDist d(8.0, 0.5, 64);
  int mode = 1;
  for (int b = 1; b <= 64; ++b) {
    if (d.Pdf(b) > d.Pdf(mode)) mode = b;
  }
  EXPECT_GE(mode, 5);
  EXPECT_LE(mode, 10);
}

TEST(LogNormalBatchDist, LargerSigmaFattensTail) {
  LogNormalBatchDist narrow(6.0, 0.3, 32);
  LogNormalBatchDist wide(6.0, 1.8, 32);
  double narrow_tail = 0.0, wide_tail = 0.0;
  for (int b = 20; b <= 32; ++b) {
    narrow_tail += narrow.Pdf(b);
    wide_tail += wide.Pdf(b);
  }
  EXPECT_GT(wide_tail, 5.0 * narrow_tail);
}

TEST(LogNormalBatchDist, SamplesMatchPmf) {
  LogNormalBatchDist d(6.0, 0.9, 32);
  Rng rng(123);
  std::vector<int> counts(33, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int b = d.Sample(rng);
    ASSERT_GE(b, 1);
    ASSERT_LE(b, 32);
    ++counts[static_cast<std::size_t>(b)];
  }
  for (int b : {1, 4, 6, 8, 16, 32}) {
    const double empirical =
        counts[static_cast<std::size_t>(b)] / static_cast<double>(n);
    EXPECT_NEAR(empirical, d.Pdf(b), 0.01) << "b=" << b;
  }
}

TEST(LogNormalBatchDist, MeanBatchMatchesSampling) {
  LogNormalBatchDist d(6.0, 0.9, 32);
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d.Sample(rng);
  EXPECT_NEAR(sum / n, d.MeanBatch(), 0.1);
}

TEST(LogNormalBatchDist, PdfVectorMatchesPdf) {
  LogNormalBatchDist d(4.0, 0.9, 16);
  const auto v = d.PdfVector();
  ASSERT_EQ(v.size(), 17u);
  EXPECT_EQ(v[0], 0.0);
  for (int b = 1; b <= 16; ++b) {
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(b)], d.Pdf(b));
  }
}

TEST(LogNormalBatchDist, InvalidParamsThrow) {
  EXPECT_THROW(LogNormalBatchDist(0.0, 0.9, 32), std::invalid_argument);
  EXPECT_THROW(LogNormalBatchDist(4.0, 0.0, 32), std::invalid_argument);
  EXPECT_THROW(LogNormalBatchDist(4.0, 0.9, 0), std::invalid_argument);
}

TEST(LogNormalBatchDist, DescribeMentionsParameters) {
  LogNormalBatchDist d(6.0, 0.9, 32);
  const auto s = d.Describe();
  EXPECT_NE(s.find("lognormal"), std::string::npos);
  EXPECT_NE(s.find("0.9"), std::string::npos);
}

TEST(FixedBatchDist, AlwaysSamplesFixedValue) {
  FixedBatchDist d(8);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.Sample(rng), 8);
  EXPECT_EQ(d.Pdf(8), 1.0);
  EXPECT_EQ(d.Pdf(7), 0.0);
  EXPECT_EQ(d.max_batch(), 8);
}

TEST(FixedBatchDist, RejectsNonPositive) {
  EXPECT_THROW(FixedBatchDist(0), std::invalid_argument);
}

TEST(EmpiricalBatchDist, NormalizesWeights) {
  // The paper's Figure 8 example: P(1)=P(2)=0.2, P(3)=0.4, P(4)=0.2.
  EmpiricalBatchDist d({20, 20, 40, 20});
  EXPECT_DOUBLE_EQ(d.Pdf(1), 0.2);
  EXPECT_DOUBLE_EQ(d.Pdf(2), 0.2);
  EXPECT_DOUBLE_EQ(d.Pdf(3), 0.4);
  EXPECT_DOUBLE_EQ(d.Pdf(4), 0.2);
  EXPECT_EQ(d.max_batch(), 4);
}

TEST(EmpiricalBatchDist, SamplesRespectWeights) {
  EmpiricalBatchDist d({0, 100});  // only batch 2 possible
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(d.Sample(rng), 2);
}

TEST(EmpiricalBatchDist, RejectsBadWeights) {
  EXPECT_THROW(EmpiricalBatchDist({}), std::invalid_argument);
  EXPECT_THROW(EmpiricalBatchDist({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(EmpiricalBatchDist({1.0, -1.0}), std::invalid_argument);
}

// Property sweep over (sigma, max_batch): the PMF always sums to 1 and the
// sample mean tracks the analytic mean.  Mirrors the Figure 13 parameter
// space.
class LogNormalSweepTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LogNormalSweepTest, PmfNormalizedAndSamplable) {
  const auto [sigma, max_batch] = GetParam();
  LogNormalBatchDist d(6.0, sigma, max_batch);
  double sum = 0.0;
  for (int b = 1; b <= max_batch; ++b) sum += d.Pdf(b);
  EXPECT_NEAR(sum, 1.0, 1e-9);

  Rng rng(42);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += d.Sample(rng);
  mean /= n;
  EXPECT_NEAR(mean, d.MeanBatch(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Figure13Space, LogNormalSweepTest,
    ::testing::Combine(::testing::Values(0.3, 0.9, 1.8),
                       ::testing::Values(16, 32, 64)));

}  // namespace
}  // namespace pe::workload
