// Tests for mixed-model workload generation: MixSpec share handling, the
// one-component bit-identity of MixTraceSource with ArrivalTraceSource,
// model-tagged CSV round trips, and the per-model trace split used by
// dedicated layouts.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::workload {
namespace {

TEST(MixSpec, NormalizesShares) {
  LogNormalBatchDist dist(4.0, 0.6, 16);
  MixSpec mix;
  mix.components.push_back({0, 3.0, &dist});
  mix.components.push_back({1, 1.0, &dist});
  const auto shares = mix.NormalizedShares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
}

TEST(MixSpec, RejectsDegenerateShares) {
  LogNormalBatchDist dist(4.0, 0.6, 16);
  EXPECT_THROW(MixSpec{}.NormalizedShares(), std::invalid_argument);
  MixSpec negative;
  negative.components.push_back({0, -0.5, &dist});
  EXPECT_THROW(negative.NormalizedShares(), std::invalid_argument);
  MixSpec zero;
  zero.components.push_back({0, 0.0, &dist});
  zero.components.push_back({1, 0.0, &dist});
  EXPECT_THROW(zero.NormalizedShares(), std::invalid_argument);
}

// The degenerate one-model mix must consume the same Rng draws as the
// single-model source: bit-identical queries, model_id 0 throughout.
TEST(MixTraceSource, SingleComponentBitIdenticalToArrivalSource) {
  LogNormalBatchDist dist(6.0, 0.9, 32);

  Rng rng_plain(41);
  PoissonArrivals arrivals_plain(250.0);
  ArrivalTraceSource plain_source(arrivals_plain, dist);
  const auto plain = Take(plain_source, 2000, rng_plain);

  Rng rng_mix(41);
  PoissonArrivals arrivals_mix(250.0);
  MixSpec mix;
  mix.components.push_back({0, 1.0, &dist});
  MixTraceSource mix_source(arrivals_mix, mix);
  const auto mixed = Take(mix_source, 2000, rng_mix);

  ASSERT_EQ(mixed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const Query& a = plain.queries()[i];
    const Query& b = mixed.queries()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(b.model_id, 0);
  }
}

TEST(MixTraceSource, SharesRespectedAndIdsDense) {
  LogNormalBatchDist small(3.0, 0.5, 16);
  LogNormalBatchDist large(12.0, 0.5, 16);
  MixSpec mix;
  mix.components.push_back({0, 0.7, &small});
  mix.components.push_back({1, 0.3, &large});
  Rng rng(5);
  PoissonArrivals arrivals(500.0);
  MixTraceSource source(arrivals, mix);
  const auto trace = Take(source, 6000, rng);

  ASSERT_EQ(trace.size(), 6000u);
  EXPECT_EQ(trace.NumModels(), 2);
  std::size_t model1 = 0;
  SimTime prev = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Query& q = trace.queries()[i];
    EXPECT_EQ(q.id, i);
    EXPECT_GT(q.arrival, prev);
    prev = q.arrival;
    ASSERT_GE(q.model_id, 0);
    ASSERT_LT(q.model_id, 2);
    if (q.model_id == 1) ++model1;
  }
  const double share1 = static_cast<double>(model1) / 6000.0;
  EXPECT_NEAR(share1, 0.3, 0.03);
}

TEST(MixTraceSource, RejectsNullDistribution) {
  MixSpec mix;
  mix.components.push_back({0, 1.0, nullptr});
  PoissonArrivals arrivals(100.0);
  EXPECT_THROW(MixTraceSource(arrivals, mix), std::invalid_argument);
}

TEST(QueryTrace, FilterModelRenumbersDensely) {
  std::vector<Query> queries;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Query q;
    q.id = i;
    q.arrival = static_cast<SimTime>(100 * (i + 1));
    q.batch = static_cast<int>(i % 4) + 1;
    q.model_id = static_cast<int>(i % 2);
    queries.push_back(q);
  }
  const QueryTrace trace(std::move(queries));
  const auto odd = trace.FilterModel(1);
  ASSERT_EQ(odd.size(), 5u);
  for (std::size_t i = 0; i < odd.size(); ++i) {
    EXPECT_EQ(odd.queries()[i].id, i);
    EXPECT_EQ(odd.queries()[i].model_id, 1);
    // Original arrival instants survive the split.
    EXPECT_EQ(odd.queries()[i].arrival,
              static_cast<SimTime>(100 * (2 * i + 2)));
  }
}

TEST(QueryTrace, CsvRoundTripsModelColumn) {
  std::vector<Query> queries;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Query q;
    q.id = i;
    q.arrival = static_cast<SimTime>(10 * (i + 1));
    q.batch = 2;
    q.model_id = static_cast<int>(i % 3);
    queries.push_back(q);
  }
  const QueryTrace trace(std::move(queries));
  std::stringstream ss;
  trace.SaveCsv(ss);
  EXPECT_NE(ss.str().find("id,arrival_ns,batch,model"), std::string::npos);
  const auto loaded = QueryTrace::LoadCsv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.queries()[i].model_id, trace.queries()[i].model_id);
  }
}

// Single-model traces must keep the legacy 3-column format byte-for-byte.
TEST(QueryTrace, CsvStaysLegacyForSingleModel) {
  std::vector<Query> queries;
  Query q;
  q.id = 0;
  q.arrival = 42;
  q.batch = 3;
  queries.push_back(q);
  const QueryTrace trace(std::move(queries));
  std::stringstream ss;
  trace.SaveCsv(ss);
  EXPECT_EQ(ss.str(), "id,arrival_ns,batch\n0,42,3\n");
  const auto loaded = QueryTrace::LoadCsv(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.queries()[0].model_id, 0);
}

}  // namespace
}  // namespace pe::workload
