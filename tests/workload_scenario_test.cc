// The scenario-first workload API: adapter bit-identity with the retired
// Generate* draw order, rate-curve shapes, mix drift, bursts, the preset
// registry, and spec validation.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "workload/trace.h"

namespace pe::workload {
namespace {

void ExpectIdenticalTraces(const QueryTrace& a, const QueryTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Query& qa = a.queries()[i];
    const Query& qb = b.queries()[i];
    EXPECT_EQ(qa.id, qb.id) << "query " << i;
    EXPECT_EQ(qa.arrival, qb.arrival) << "query " << i;
    EXPECT_EQ(qa.batch, qb.batch) << "query " << i;
    EXPECT_EQ(qa.model_id, qb.model_id) << "query " << i;
  }
}

// ---- Adapter bit-identity -------------------------------------------------

// The one retained adapter-parity assertion, now that the Generate*Trace
// free functions are gone: ArrivalTraceSource must consume draws in
// exactly the retired GenerateTrace order -- one gap draw then one batch
// draw per query, arrivals cumulative from time zero, ids dense.  The
// inline loop below IS that contract; every historical trace (and every
// seed-pinned result derived from one) depends on it staying fixed.
TEST(TraceSourceAdapters, ArrivalSourceMatchesLegacyDrawOrderBitForBit) {
  LogNormalBatchDist dist(6.0, 0.9, 32);
  Rng legacy_rng(42);
  PoissonArrivals legacy_arrivals(250.0);
  std::vector<Query> legacy_queries;
  SimTime now = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    now += legacy_arrivals.NextGap(legacy_rng);
    Query q;
    q.id = i;
    q.arrival = now;
    q.batch = dist.Sample(legacy_rng);
    legacy_queries.push_back(q);
  }
  const QueryTrace legacy(std::move(legacy_queries));

  Rng rng(42);
  PoissonArrivals arrivals(250.0);
  ArrivalTraceSource source(arrivals, dist);
  const auto streamed = Take(source, 5000, rng);
  ExpectIdenticalTraces(legacy, streamed);
}

TEST(TraceSourceAdapters, PhasedSourceKeepsLastPhasePastBudget) {
  FixedBatchDist a(1), b(8);
  Rng rng(3);
  PoissonArrivals arrivals(100.0);
  PhasedTraceSource source(arrivals, {{&a, 5}, {&b, 5}});
  const auto trace = Take(source, 20, rng);
  ASSERT_EQ(trace.size(), 20u);
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(trace.queries()[i].batch, 8);
  }
}

TEST(TraceSourceAdapters, ReplaySourceIsExactAndFinite) {
  LogNormalBatchDist dist(6.0, 0.9, 32);
  Rng gen_rng(5);
  PoissonArrivals arrivals(100.0);
  ArrivalTraceSource gen(arrivals, dist);
  const auto original = Take(gen, 100, gen_rng);

  Rng rng(999);  // replay consumes no draws; the seed must not matter
  ReplayTraceSource source(original);
  const auto replayed = Take(source, 1000, rng);
  ExpectIdenticalTraces(original, replayed);
  EXPECT_EQ(source.Next(rng), std::nullopt);
}

// ---- Scenario bit-identity with the raw adapter sources --------------------

TEST(ScenarioTrace, SteadyOneModelMatchesArrivalSourceBitForBit) {
  ScenarioSpec spec;
  spec.rate.base_qps = 300.0;
  spec.max_batch = 32;
  ComponentSpec c;
  c.median = 6.0;
  c.sigma = 0.9;
  spec.components.push_back(c);
  const auto scenario = GenerateScenarioTrace(spec, 5000, 42);

  Rng rng(42);
  PoissonArrivals arrivals(300.0);
  LogNormalBatchDist dist(6.0, 0.9, 32);
  ArrivalTraceSource source(arrivals, dist);
  const auto direct = Take(source, 5000, rng);
  ExpectIdenticalTraces(direct, scenario);
}

TEST(ScenarioTrace, SteadyStaticMixMatchesMixSourceBitForBit) {
  ScenarioSpec spec;
  spec.rate.base_qps = 500.0;
  spec.max_batch = 32;
  ComponentSpec c0;
  c0.model_id = 0;
  c0.weight = 0.7;
  c0.median = 4.0;
  c0.sigma = 0.8;
  ComponentSpec c1;
  c1.model_id = 1;
  c1.weight = 0.3;
  c1.median = 12.0;
  c1.sigma = 1.1;
  spec.components = {c0, c1};
  const auto scenario = GenerateScenarioTrace(spec, 5000, 77);

  LogNormalBatchDist d0(4.0, 0.8, 32);
  LogNormalBatchDist d1(12.0, 1.1, 32);
  MixSpec mix;
  mix.components = {{0, 0.7, &d0}, {1, 0.3, &d1}};
  Rng rng(77);
  PoissonArrivals arrivals(500.0);
  MixTraceSource source(arrivals, mix);
  const auto direct = Take(source, 5000, rng);
  ExpectIdenticalTraces(direct, scenario);
}

TEST(ScenarioTrace, DeterministicForSameSeed) {
  ScenarioSpec spec;
  spec.components.push_back(ComponentSpec{});
  ApplyScenario(spec, "flashcrowd:rate=400");
  const auto a = GenerateScenarioTrace(spec, 2000, 11);
  const auto b = GenerateScenarioTrace(spec, 2000, 11);
  ExpectIdenticalTraces(a, b);
}

// ---- Rate curves ------------------------------------------------------------

TEST(RateCurve, DiurnalOscillatesAroundBase) {
  RateCurve curve;
  curve.shape = RateShape::kDiurnal;
  curve.base_qps = 100.0;
  curve.amplitude = 0.6;
  curve.period_sec = 60.0;
  EXPECT_DOUBLE_EQ(curve.QpsAt(0.0), 100.0);
  EXPECT_NEAR(curve.QpsAt(15.0), 160.0, 1e-9);  // peak at quarter period
  EXPECT_NEAR(curve.QpsAt(45.0), 40.0, 1e-9);   // trough at three quarters
}

TEST(RateCurve, FlashJumpsThenDecays) {
  RateCurve curve;
  curve.shape = RateShape::kFlash;
  curve.base_qps = 100.0;
  curve.flash_at_sec = 10.0;
  curve.flash_mult = 8.0;
  curve.flash_decay_sec = 5.0;
  EXPECT_DOUBLE_EQ(curve.QpsAt(9.999), 100.0);
  EXPECT_NEAR(curve.QpsAt(10.0), 800.0, 1e-9);
  EXPECT_GT(curve.QpsAt(12.0), curve.QpsAt(20.0));
  EXPECT_NEAR(curve.QpsAt(200.0), 100.0, 1.0);  // decayed back to baseline
}

TEST(ScenarioTrace, FlashCrowdCompressesGapsAfterOnset) {
  ScenarioSpec spec;
  spec.components.push_back(ComponentSpec{});
  ApplyScenario(spec, "flashcrowd:rate=100,at=5,mult=10,decay=4");
  const auto trace = GenerateScenarioTrace(spec, 4000, 13);

  // Mean inter-arrival gap right after the flash must be far smaller than
  // the pre-flash gap.
  const SimTime onset = SecToTicks(5.0);
  const SimTime post_end = SecToTicks(7.0);
  double pre_gaps = 0.0, post_gaps = 0.0;
  int pre_n = 0, post_n = 0;
  SimTime prev = 0;
  for (const auto& q : trace.queries()) {
    const double gap = static_cast<double>(q.arrival - prev);
    if (q.arrival < onset) {
      pre_gaps += gap;
      ++pre_n;
    } else if (q.arrival < post_end) {
      post_gaps += gap;
      ++post_n;
    }
    prev = q.arrival;
  }
  ASSERT_GT(pre_n, 50);
  ASSERT_GT(post_n, 50);
  EXPECT_LT(post_gaps / post_n, 0.3 * (pre_gaps / pre_n));
}

// ---- Mix drift and bursts ----------------------------------------------------

TEST(ScenarioTrace, MixDriftShiftsModelSharesOverWindow) {
  ScenarioSpec spec;
  spec.rate.base_qps = 1000.0;
  spec.drift_window_sec = 10.0;
  ComponentSpec c0;
  c0.model_id = 0;
  c0.weight = 0.9;
  c0.end_weight = 0.1;
  ComponentSpec c1;
  c1.model_id = 1;
  c1.weight = 0.1;
  c1.end_weight = 0.9;
  spec.components = {c0, c1};
  const auto trace = GenerateScenarioTrace(spec, 20000, 21);

  const SimTime window = SecToTicks(10.0);
  int early0 = 0, early_n = 0, late0 = 0, late_n = 0;
  for (const auto& q : trace.queries()) {
    if (q.arrival < window / 5) {
      early0 += q.model_id == 0 ? 1 : 0;
      ++early_n;
    } else if (q.arrival > window) {
      late0 += q.model_id == 0 ? 1 : 0;
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 200);
  ASSERT_GT(late_n, 200);
  EXPECT_GT(static_cast<double>(early0) / early_n, 0.75);
  EXPECT_LT(static_cast<double>(late0) / late_n, 0.25);
}

TEST(ScenarioTrace, SigmaDriftWidensBatchSpread) {
  ScenarioSpec spec;
  spec.rate.base_qps = 1000.0;
  spec.drift_window_sec = 10.0;
  spec.max_batch = 256;
  ComponentSpec c;
  c.median = 8.0;
  c.sigma = 0.1;
  c.end_sigma = 1.6;
  spec.components = {c};
  const auto trace = GenerateScenarioTrace(spec, 20000, 31);

  const SimTime window = SecToTicks(10.0);
  double early_var = 0.0, late_var = 0.0;
  int early_n = 0, late_n = 0;
  for (const auto& q : trace.queries()) {
    const double d = std::log(static_cast<double>(q.batch)) - std::log(8.0);
    if (q.arrival < window / 5) {
      early_var += d * d;
      ++early_n;
    } else if (q.arrival > window) {
      late_var += d * d;
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 200);
  ASSERT_GT(late_n, 200);
  EXPECT_GT(late_var / late_n, 4.0 * (early_var / early_n));
}

TEST(ScenarioTrace, BurstsConcentrateTraffic) {
  ScenarioSpec spec;
  spec.rate.base_qps = 2000.0;
  ComponentSpec c0, c1, c2, c3;
  c0.model_id = 0;
  c1.model_id = 1;
  c2.model_id = 2;
  c3.model_id = 3;
  spec.components = {c0, c1, c2, c3};
  spec.burst.rate_per_sec = 0.5;
  spec.burst.duration_sec = 1.0;
  spec.burst.share = 0.95;
  const auto trace = GenerateScenarioTrace(spec, 20000, 17);

  // In 100ms slices, bursty slices should be dominated by one model far
  // beyond the uniform 25% baseline.
  std::map<SimTime, std::map<int, int>> slices;
  for (const auto& q : trace.queries()) {
    slices[q.arrival / SecToTicks(0.1)][q.model_id]++;
  }
  int dominated = 0;
  for (const auto& [slice, counts] : slices) {
    int total = 0, peak = 0;
    for (const auto& [model, n] : counts) {
      total += n;
      peak = std::max(peak, n);
    }
    if (total >= 50 && peak > 0.8 * total) ++dominated;
  }
  EXPECT_GT(dominated, 3);
}

TEST(ScenarioTrace, DisabledBurstsConsumeNoDraws) {
  ScenarioSpec with_burst_field;
  ComponentSpec c0, c1;
  c0.model_id = 0;
  c1.model_id = 1;
  with_burst_field.components = {c0, c1};
  with_burst_field.burst.rate_per_sec = 0.0;  // disabled

  ScenarioSpec plain = with_burst_field;
  plain.burst = BurstSpec{};
  ExpectIdenticalTraces(GenerateScenarioTrace(plain, 2000, 5),
                        GenerateScenarioTrace(with_burst_field, 2000, 5));
}

// ---- Preset registry and parsing ---------------------------------------------

TEST(ScenarioRegistry, ParseRefSplitsNameAndOverrides) {
  const auto opts = ParseScenarioRef("flashcrowd:rate=500,mult=10");
  EXPECT_EQ(opts.name, "flashcrowd");
  ASSERT_EQ(opts.overrides.size(), 2u);
  EXPECT_EQ(opts.overrides[0].first, "rate");
  EXPECT_EQ(opts.overrides[0].second, "500");
  EXPECT_EQ(opts.overrides[1].first, "mult");
  EXPECT_EQ(opts.overrides[1].second, "10");
}

TEST(ScenarioRegistry, ParseRefRejectsMalformedPairs) {
  EXPECT_THROW(ParseScenarioRef(""), std::invalid_argument);
  EXPECT_THROW(ParseScenarioRef("steady:rate"), std::invalid_argument);
  EXPECT_THROW(ParseScenarioRef("steady:rate="), std::invalid_argument);
  EXPECT_THROW(ParseScenarioRef("steady:=5"), std::invalid_argument);
}

TEST(ScenarioRegistry, EveryPresetProducesAValidSpec) {
  for (const auto& name : ScenarioNames()) {
    ScenarioSpec spec;
    ComponentSpec c0, c1;
    c0.model_id = 0;
    c0.weight = 0.8;
    c1.model_id = 1;
    c1.weight = 0.2;
    spec.components = {c0, c1};
    ApplyScenario(spec, name);
    EXPECT_EQ(spec.name, name);
    const auto trace = GenerateScenarioTrace(spec, 500, 3);
    EXPECT_EQ(trace.size(), 500u) << name;
  }
}

TEST(ScenarioRegistry, MixdriftReversesWeights) {
  ScenarioSpec spec;
  ComponentSpec c0, c1;
  c0.weight = 0.8;
  c1.weight = 0.2;
  spec.components = {c0, c1};
  ApplyScenario(spec, "mixdrift");
  EXPECT_DOUBLE_EQ(spec.components[0].end_weight, 0.2);
  EXPECT_DOUBLE_EQ(spec.components[1].end_weight, 0.8);
}

TEST(ScenarioRegistry, UnknownPresetAndKeyRejected) {
  ScenarioSpec spec;
  spec.components.push_back(ComponentSpec{});
  EXPECT_THROW(ApplyScenario(spec, "tsunami"), std::invalid_argument);
  EXPECT_THROW(ApplyScenario(spec, "steady:bogus=1"), std::invalid_argument);
  EXPECT_THROW(ApplyScenario(spec, "steady:rate=0.6x"),
               std::invalid_argument);
}

// ---- Validation ---------------------------------------------------------------

TEST(ScenarioSpec, ValidateRejectsBadFields) {
  ScenarioSpec ok;
  ok.components.push_back(ComponentSpec{});
  EXPECT_NO_THROW(ok.Validate());

  ScenarioSpec empty;
  EXPECT_THROW(empty.Validate(), std::invalid_argument);

  ScenarioSpec bad_rate = ok;
  bad_rate.rate.base_qps = 0.0;
  EXPECT_THROW(bad_rate.Validate(), std::invalid_argument);

  ScenarioSpec bad_amp = ok;
  bad_amp.rate.shape = RateShape::kDiurnal;
  bad_amp.rate.amplitude = 1.0;
  EXPECT_THROW(bad_amp.Validate(), std::invalid_argument);

  ScenarioSpec bad_sigma = ok;
  bad_sigma.components[0].sigma = 0.0;
  EXPECT_THROW(bad_sigma.Validate(), std::invalid_argument);

  ScenarioSpec bad_burst = ok;
  bad_burst.burst.rate_per_sec = 1.0;
  bad_burst.burst.share = 1.5;
  EXPECT_THROW(bad_burst.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace pe::workload
