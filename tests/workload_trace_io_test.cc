// Versioned trace capture/replay: round-trip bit-fidelity, strict
// line-numbered diagnostics, forward-compatible unknown-key skipping.
#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/scenario.h"

namespace pe::workload {
namespace {

TraceDocument MakeDoc(std::size_t n = 200) {
  ScenarioSpec spec;
  spec.rate.base_qps = 500.0;
  ComponentSpec c0;
  c0.model_id = 0;
  c0.model_name = "resnet";
  c0.weight = 0.7;
  ComponentSpec c1;
  c1.model_id = 1;
  c1.model_name = "mobilenet";
  c1.weight = 0.3;
  spec.components = {c0, c1};

  TraceDocument doc;
  doc.scenario = "steady:rate=500";
  doc.models = {"resnet", "mobilenet"};
  doc.trace = GenerateScenarioTrace(spec, n, 42);
  return doc;
}

TraceDocument RoundTrip(const TraceDocument& doc) {
  std::stringstream ss;
  SaveTrace(ss, doc);
  return LoadTrace(ss);
}

TEST(TraceIo, RoundTripIsBitFaithful) {
  const auto doc = MakeDoc();
  const auto loaded = RoundTrip(doc);
  EXPECT_EQ(loaded.scenario, doc.scenario);
  EXPECT_EQ(loaded.models, doc.models);
  ASSERT_EQ(loaded.trace.size(), doc.trace.size());
  for (std::size_t i = 0; i < doc.trace.size(); ++i) {
    const Query& a = doc.trace.queries()[i];
    const Query& b = loaded.trace.queries()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.model_id, b.model_id);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  TraceDocument doc;
  doc.models = {"resnet"};
  const auto loaded = RoundTrip(doc);
  EXPECT_TRUE(loaded.trace.empty());
  EXPECT_EQ(loaded.models, doc.models);
  EXPECT_EQ(loaded.scenario, "");
}

TEST(TraceIo, ModelNamesWithSpecialCharactersSurvive) {
  TraceDocument doc;
  doc.scenario = "custom \"quoted\"\nnewline\tand\\slash";
  doc.models = {"model \"a\"", "b\\c"};
  std::vector<Query> qs = {{0, 10, 1, 0}, {1, 20, 2, 1}};
  doc.trace = QueryTrace(std::move(qs));
  const auto loaded = RoundTrip(doc);
  EXPECT_EQ(loaded.scenario, doc.scenario);
  EXPECT_EQ(loaded.models, doc.models);
}

TEST(TraceIo, SaveRejectsInvalidDocument) {
  TraceDocument no_models;
  std::vector<Query> qs = {{0, 10, 1, 0}};
  no_models.trace = QueryTrace(std::move(qs));
  std::stringstream ss;
  EXPECT_THROW(SaveTrace(ss, no_models), std::invalid_argument);

  TraceDocument uncovered;
  uncovered.models = {"resnet"};
  std::vector<Query> q2 = {{0, 10, 1, 1}};  // references model 1
  uncovered.trace = QueryTrace(std::move(q2));
  EXPECT_THROW(SaveTrace(ss, uncovered), std::invalid_argument);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "trace_io_test_roundtrip.json";
  const auto doc = MakeDoc(50);
  SaveTraceFile(path, doc);
  const auto loaded = LoadTraceFile(path);
  EXPECT_EQ(loaded.models, doc.models);
  EXPECT_EQ(loaded.trace.size(), doc.trace.size());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileFailsWithPath) {
  try {
    LoadTraceFile("no/such/trace.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no/such/trace.json"),
              std::string::npos);
  }
}

// Malformed documents must name the offending line.
std::string LoadError(const std::string& text) {
  std::stringstream ss(text);
  try {
    LoadTrace(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

std::string ValidHeader() {
  return "{\n\"schema\": \"paris-elsa-trace-v1\",\n\"time_unit\": \"ns\",\n"
         "\"models\": [\"resnet\"],\n";
}

TEST(TraceIoErrors, WrongSchemaNamed) {
  const auto what = LoadError(
      "{\n\"schema\": \"paris-elsa-trace-v9\",\n\"models\": [\"m\"],\n"
      "\"queries\": []\n}\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("schema"), std::string::npos) << what;
}

TEST(TraceIoErrors, MissingRequiredKeys) {
  EXPECT_NE(LoadError("{\n\"queries\": []\n}\n").find("schema"),
            std::string::npos);
  EXPECT_NE(LoadError("{\n\"schema\": \"paris-elsa-trace-v1\",\n"
                      "\"queries\": []\n}\n")
                .find("models"),
            std::string::npos);
  EXPECT_NE(LoadError("{\n\"schema\": \"paris-elsa-trace-v1\",\n"
                      "\"models\": [\"m\"]\n}\n")
                .find("queries"),
            std::string::npos);
}

TEST(TraceIoErrors, EmptyModelsRejected) {
  const auto what =
      LoadError("{\n\"schema\": \"paris-elsa-trace-v1\",\n\"models\": [],\n"
                "\"queries\": []\n}\n");
  EXPECT_NE(what.find("models"), std::string::npos) << what;
}

TEST(TraceIoErrors, IdOutOfOrderNamedWithLine) {
  const auto what = LoadError(ValidHeader() +
                              "\"queries\": [\n[0, 10, 1, 0],\n"
                              "[7, 20, 1, 0]\n]\n}\n");
  EXPECT_NE(what.find("line 7"), std::string::npos) << what;
  EXPECT_NE(what.find("id"), std::string::npos) << what;
}

TEST(TraceIoErrors, DecreasingArrivalRejected) {
  const auto what = LoadError(ValidHeader() +
                              "\"queries\": [\n[0, 50, 1, 0],\n"
                              "[1, 20, 1, 0]\n]\n}\n");
  EXPECT_NE(what.find("line 7"), std::string::npos) << what;
  EXPECT_NE(what.find("arrival"), std::string::npos) << what;
}

TEST(TraceIoErrors, BadBatchRejected) {
  const auto what =
      LoadError(ValidHeader() + "\"queries\": [\n[0, 10, 0, 0]\n]\n}\n");
  EXPECT_NE(what.find("line 6"), std::string::npos) << what;
  EXPECT_NE(what.find("batch"), std::string::npos) << what;
}

TEST(TraceIoErrors, ModelOutOfRangeRejected) {
  const auto what =
      LoadError(ValidHeader() + "\"queries\": [\n[0, 10, 1, 3]\n]\n}\n");
  EXPECT_NE(what.find("model"), std::string::npos) << what;
}

TEST(TraceIoErrors, MalformedJsonNamedWithLine) {
  const auto what =
      LoadError(ValidHeader() + "\"queries\": [\n[0, 10, 1\n]\n}\n");
  EXPECT_NE(what.find("line"), std::string::npos) << what;
}

TEST(TraceIoErrors, UnterminatedStringRejected) {
  EXPECT_NE(LoadError("{\n\"schema\": \"paris-elsa").find("line 2"),
            std::string::npos);
}

TEST(TraceIoErrors, TrailingContentRejected) {
  const auto what =
      LoadError(ValidHeader() + "\"queries\": []\n}\nextra\n");
  EXPECT_NE(what.find("line 7"), std::string::npos) << what;
  EXPECT_NE(what.find("trailing"), std::string::npos) << what;
}

TEST(TraceIoErrors, FractionalNumberRejected) {
  const auto what =
      LoadError(ValidHeader() + "\"queries\": [\n[0, 10.5, 1, 0]\n]\n}\n");
  EXPECT_NE(what.find("line 6"), std::string::npos) << what;
}

TEST(TraceIo, UnknownTopLevelKeysSkippedForForwardCompat) {
  const auto text =
      "{\n\"schema\": \"paris-elsa-trace-v1\",\n"
      "\"generator\": {\"tool\": \"future\", \"nested\": [1, 2, {}]},\n"
      "\"time_unit\": \"ns\",\n"
      "\"models\": [\"resnet\"],\n"
      "\"queries\": [[0, 10, 2, 0]],\n"
      "\"checksum\": 12345\n}\n";
  std::stringstream ss(text);
  const auto doc = LoadTrace(ss);
  ASSERT_EQ(doc.trace.size(), 1u);
  EXPECT_EQ(doc.trace.queries()[0].batch, 2);
}

TEST(TraceIo, DuplicateKeysRejected) {
  const auto what = LoadError(
      "{\n\"schema\": \"paris-elsa-trace-v1\",\n"
      "\"models\": [\"a\"],\n\"models\": [\"b\"],\n\"queries\": []\n}\n");
  EXPECT_NE(what.find("models"), std::string::npos) << what;
}

}  // namespace
}  // namespace pe::workload
