#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/scenario.h"

namespace pe::workload {
namespace {

QueryTrace MakeTrace(std::size_t n, double rate = 100.0,
                     std::uint64_t seed = 1) {
  Rng rng(seed);
  PoissonArrivals arrivals(rate);
  LogNormalBatchDist dist(6.0, 0.9, 32);
  ArrivalTraceSource source(arrivals, dist);
  return Take(source, n, rng);
}

TEST(QueryTrace, GeneratesRequestedCount) {
  const auto trace = MakeTrace(500);
  EXPECT_EQ(trace.size(), 500u);
  EXPECT_FALSE(trace.empty());
}

TEST(QueryTrace, IdsAreDenseAndOrdered) {
  const auto trace = MakeTrace(200);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.queries()[i].id, i);
    if (i > 0) {
      EXPECT_GE(trace.queries()[i].arrival, trace.queries()[i - 1].arrival);
    }
  }
}

TEST(QueryTrace, OfferedQpsNearConfiguredRate) {
  const auto trace = MakeTrace(20000, 300.0);
  EXPECT_NEAR(trace.OfferedQps(), 300.0, 10.0);
}

TEST(QueryTrace, BatchesWithinDistributionRange) {
  const auto trace = MakeTrace(2000);
  for (const auto& q : trace.queries()) {
    EXPECT_GE(q.batch, 1);
    EXPECT_LE(q.batch, 32);
  }
  EXPECT_GT(trace.MeanBatch(), 1.0);
}

TEST(QueryTrace, DeterministicForSameSeed) {
  const auto a = MakeTrace(100, 100.0, 42);
  const auto b = MakeTrace(100, 100.0, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries()[i].arrival, b.queries()[i].arrival);
    EXPECT_EQ(a.queries()[i].batch, b.queries()[i].batch);
  }
}

TEST(QueryTrace, DifferentSeedsDiffer) {
  const auto a = MakeTrace(100, 100.0, 1);
  const auto b = MakeTrace(100, 100.0, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.queries()[i].arrival != b.queries()[i].arrival) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QueryTrace, CsvRoundTrip) {
  const auto trace = MakeTrace(50);
  std::stringstream ss;
  trace.SaveCsv(ss);
  const auto loaded = QueryTrace::LoadCsv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.queries()[i].id, trace.queries()[i].id);
    EXPECT_EQ(loaded.queries()[i].arrival, trace.queries()[i].arrival);
    EXPECT_EQ(loaded.queries()[i].batch, trace.queries()[i].batch);
  }
}

TEST(QueryTrace, LoadCsvRejectsEmpty) {
  std::stringstream ss;
  EXPECT_THROW(QueryTrace::LoadCsv(ss), std::runtime_error);
}

TEST(QueryTrace, CsvRoundTripMultiModel) {
  std::vector<Query> qs = {{0, 100, 2, 1}, {1, 200, 4, 0}, {2, 300, 8, 2}};
  const QueryTrace trace(std::move(qs));
  std::stringstream ss;
  trace.SaveCsv(ss);
  const auto loaded = QueryTrace::LoadCsv(ss);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.queries()[i].model_id, trace.queries()[i].model_id);
  }
}

// Malformed input must fail with the offending line named, not silently
// misparse the way the old std::stoi-based loader did.
std::string LoadCsvError(const std::string& text) {
  std::stringstream ss(text);
  try {
    QueryTrace::LoadCsv(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(QueryTrace, LoadCsvRejectsBadHeader) {
  const auto what = LoadCsvError("id,arrival,batch\n0,100,2\n");
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  EXPECT_NE(what.find("header"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvRejectsNonNumericFieldWithLineNumber) {
  const auto what =
      LoadCsvError("id,arrival_ns,batch\n0,100,2\n1,2x0,4\n");
  EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  EXPECT_NE(what.find("arrival_ns"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvRejectsMissingFieldWithLineNumber) {
  const auto what = LoadCsvError("id,arrival_ns,batch\n0,100\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("expected 3 fields"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvRejectsExtraFieldWhenSingleModelHeader) {
  const auto what = LoadCsvError("id,arrival_ns,batch\n0,100,2,1\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvRejectsNonPositiveBatch) {
  const auto what = LoadCsvError("id,arrival_ns,batch\n0,100,0\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("batch"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvRejectsEmptyFieldInsteadOfMisparsing) {
  const auto what = LoadCsvError("id,arrival_ns,batch\n0,,2\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(QueryTrace, LoadCsvAcceptsCrlfAndBlankLines) {
  std::stringstream ss("id,arrival_ns,batch\r\n0,100,2\r\n\r\n1,200,4\r\n");
  const auto loaded = QueryTrace::LoadCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.queries()[1].arrival, 200);
}

TEST(QueryTrace, ConstructorSortsUnorderedQueries) {
  std::vector<Query> qs = {{0, 300, 1}, {1, 100, 2}, {2, 200, 4}};
  QueryTrace trace(std::move(qs));
  EXPECT_EQ(trace.queries()[0].arrival, 100);
  EXPECT_EQ(trace.queries()[2].arrival, 300);
}

TEST(DriftingTrace, PhasesChangeBatchStatistics) {
  Rng rng(8);
  PoissonArrivals arrivals(200.0);
  LogNormalBatchDist small(2.0, 0.4, 32);
  LogNormalBatchDist large(20.0, 0.4, 32);
  PhasedTraceSource source(arrivals, {{&small, 2000}, {&large, 2000}});
  const auto trace = Take(source, 4000, rng);
  ASSERT_EQ(trace.size(), 4000u);
  double first = 0.0, second = 0.0;
  for (std::size_t i = 0; i < 2000; ++i) first += trace.queries()[i].batch;
  for (std::size_t i = 2000; i < 4000; ++i) {
    second += trace.queries()[i].batch;
  }
  EXPECT_LT(first / 2000, 4.0);
  EXPECT_GT(second / 2000, 14.0);
}

TEST(DriftingTrace, ArrivalsContinuousAcrossPhases) {
  Rng rng(9);
  PoissonArrivals arrivals(100.0);
  FixedBatchDist a(1), b(8);
  PhasedTraceSource source(arrivals, {{&a, 100}, {&b, 100}});
  const auto trace = Take(source, 200, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace.queries()[i].arrival, trace.queries()[i - 1].arrival);
    EXPECT_EQ(trace.queries()[i].id, i);
  }
}

TEST(DriftingTrace, NullDistributionRejected) {
  PoissonArrivals arrivals(100.0);
  EXPECT_THROW(PhasedTraceSource(arrivals, {{nullptr, 10}}),
               std::invalid_argument);
}

TEST(QueryTrace, EmptyTraceProperties) {
  QueryTrace trace;
  EXPECT_EQ(trace.Span(), 0);
  EXPECT_EQ(trace.OfferedQps(), 0.0);
  EXPECT_EQ(trace.MeanBatch(), 0.0);
}

}  // namespace
}  // namespace pe::workload
