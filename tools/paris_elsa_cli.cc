// paris_elsa_cli: command-line driver for the library.
//
// Subcommands:
//   profile   -- emit the one-time (partition x batch) profile table as CSV
//   plan      -- run PARIS and print the partition plan + MIG placement
//   simulate  -- replay a Poisson/log-normal workload on a chosen design
//   sweep     -- latency-bounded throughput of all paper designs
//   trace     -- generate a query trace CSV for external tools
//   elastic   -- one continuous run under workload drift with live
//                re-partitioning (reconfigurations as simulation events)
//   mix       -- multi-model serving: a consolidated mixed-PARIS layout
//                replays an interleaved multi-model trace with a
//                configurable model-swap penalty
//   fleet     -- N servers behind a pluggable router tier: the fleet trace
//                is split deterministically across per-server engines that
//                replay in parallel (bit-identical at any --jobs)
//
// Common options:
//   --model NAME        shufflenet|mobilenet|resnet|bert|conformer (resnet)
//   --median M          log-normal batch median (6)
//   --sigma S           log-normal sigma (0.9)
//   --max-batch B       distribution max batch (32)
//   --sla-n N           SLA multiplier (1.5)
// workload options (simulate/trace/elastic/mix/fleet):
//   --scenario R        named workload preset, optionally parameterized:
//                       steady|diurnal|flashcrowd|mixdrift|heavytail
//                       [:key=val,...] (e.g. flashcrowd:rate=500,mult=10);
//                       omitted = steady (the legacy constant-rate stream)
//   --capture-trace P   save the run's workload as a paris-elsa-trace-v1
//                       JSON document (see docs/TRACE_SCHEMA.md)
//   --replay-trace P    replay a captured document instead of generating;
//                       model names come from the document, so a captured
//                       fleet sub-trace replays standalone.  Exclusive
//                       with --scenario.
// simulate options:
//   --design D          paris|random|gpu1|gpu2|gpu3|gpu4|gpu7 (paris)
//   --scheduler S       elsa|fifs|jsq|greedy (elsa)
//   --rate QPS          offered load (0 = 85% of the design's capacity)
//   --queries N         trace length (20000)
//   --seed S            workload seed (1)
//   --jobs N            experiment-engine threads in [1, 1024] (1);
//                       parallelizes the sweep subcommand's probes
//   --json PATH         also write machine-readable JSON results to PATH
//   --csv               machine-readable output where applicable
// elastic options:
//   --epochs N          target number of epochs: the trace is split into
//                       chunks of ceil(queries/N); when N does not divide
//                       --queries the actual count can be one lower (8)
//   --drift T           total-variation drift threshold that triggers
//                       re-partitioning (0.15)
//   --drift-median M    log-normal batch median of the drifted middle
//                       phase of the workload (18)
//   --downtime-ms D     downtime charged per reconfiguration (2000)
// mix options:
//   --models A,B,...    comma-separated model-zoo names (resnet,mobilenet)
//   --shares X,Y,...    per-model traffic shares, index-aligned with
//                       --models (uniform when omitted)
//   --medians X,Y,...   per-model log-normal batch medians (--median each)
//   --swap-cost-us C    model-swap penalty charged when a partition starts
//                       a query of a non-resident model (0)
//   --budget G          total GPC budget of the consolidated server (48)
//   --gpus N            physical GPUs in the cluster (8)
// fleet options (mix options apply per server):
//   --servers N         number of inference servers (4)
//   --policy P          router policy: hash|least|po2c (hash)
//   --placement K       uniform|sharded model placement (uniform)
//   --replicas R        replicas per model under sharded placement (2)
//   --rate QPS          total offered load across the fleet
//                       (300 x --servers when omitted)
//   --faults F          deterministic fault schedule, optionally
//                       parameterized: none|serverloss|flaky|brownout|
//                       cascade [:key=val,...] (see docs/FAULTS.md);
//                       omitted = fault-free batch path
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/fleet_runner.h"
#include "core/mix_runner.h"
#include "core/result_io.h"
#include "core/server_builder.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "online/elastic_server.h"
#include "online/repartition_controller.h"
#include "workload/scenario.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace {

using namespace pe;

// Non-negative integer option (counts, sizes); rejects negatives with the
// offending flag named instead of failing deep inside a container resize.
std::size_t GetCount(const ArgParser& args, const std::string& key,
                     long long fallback) {
  const long long v = args.GetInt(key, fallback);
  if (v < 0) {
    throw std::invalid_argument("--" + key +
                                ": expected a non-negative integer, got " +
                                std::to_string(v));
  }
  return static_cast<std::size_t>(v);
}

// Experiment-engine thread count.  Out-of-range values (including 0) are
// a hard error rather than a silent clamp, consistent with the other
// count-option validation.
int GetJobs(const ArgParser& args) {
  const long long v = args.GetInt("jobs", 1);
  if (v < 1 || v > 1024) {
    throw std::invalid_argument(
        "--jobs: expected an integer in [1, 1024], got " + std::to_string(v));
  }
  return static_cast<int>(v);
}

// Fail-fast validation of --json PATH: reject an empty path and probe
// that the file is writable (append mode, so an existing file's contents
// survive the probe) before any expensive simulation starts.
void CheckJsonSink(const ArgParser& args) {
  const auto path = args.GetString("json");
  if (!path) return;
  if (path->empty()) {
    throw std::invalid_argument("--json: expected a file path");
  }
  std::ofstream probe(*path, std::ios::app);
  if (!probe) {
    throw std::invalid_argument("--json: cannot open " + *path +
                                " for writing");
  }
}

// Writes `report` to --json PATH when the option is present.
void MaybeWriteJson(const ArgParser& args, core::Json report) {
  const auto path = args.GetString("json");
  if (!path) return;
  core::WriteJsonFile(*path, report);
  std::cerr << "json: " << *path << "\n";
}

core::TestbedConfig ConfigFrom(const ArgParser& args) {
  core::TestbedConfig config;
  config.model_name = args.GetString("model", "resnet");
  config.dist_median = args.GetDouble("median", config.dist_median);
  config.dist_sigma = args.GetDouble("sigma", config.dist_sigma);
  const long long max_batch = args.GetInt("max-batch", 32);
  if (max_batch < 1 || max_batch > 4096) {
    throw std::invalid_argument(
        "--max-batch: expected an integer in [1, 4096], got " +
        std::to_string(max_batch));
  }
  config.max_batch = static_cast<int>(max_batch);
  config.sla_n = args.GetDouble("sla-n", 1.5);
  return config;
}

partition::PartitionPlan PlanFrom(const core::Testbed& tb,
                                  const std::string& design) {
  if (design == "paris") return tb.PlanParis();
  if (design == "random") return tb.PlanRandom();
  if (design.rfind("gpu", 0) == 0 && design.size() == 4) {
    return tb.PlanHomogeneous(design[3] - '0');
  }
  throw std::invalid_argument("unknown --design: " + design);
}

core::SchedulerKind SchedulerFrom(const std::string& name) {
  if (name == "elsa") return core::SchedulerKind::kElsa;
  if (name == "fifs") return core::SchedulerKind::kFifs;
  if (name == "jsq") return core::SchedulerKind::kJsq;
  if (name == "greedy") return core::SchedulerKind::kGreedyFastest;
  throw std::invalid_argument("unknown --scheduler: " + name);
}

// Splits a comma-separated option value ("a,b,c" -> {"a","b","c"}).
std::vector<std::string> SplitList(const std::string& value) {
  std::vector<std::string> items;
  std::string::size_type begin = 0;
  for (;;) {
    const auto comma = value.find(',', begin);
    items.push_back(value.substr(begin, comma - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return items;
}

// Comma-separated doubles for --shares/--medians; must be index-aligned
// with --models when present.
std::vector<double> GetDoubleList(const ArgParser& args,
                                  const std::string& key,
                                  std::size_t expected) {
  const auto raw = args.GetString(key);
  if (!raw) return {};
  const auto items = SplitList(*raw);
  if (items.size() != expected) {
    throw std::invalid_argument("--" + key + ": expected " +
                                std::to_string(expected) +
                                " comma-separated values, got " +
                                std::to_string(items.size()));
  }
  std::vector<double> values;
  for (const auto& item : items) {
    // Strict parse (same contract as ArgParser::GetDouble): the whole
    // token must be consumed, so "0.6x" is an error, not 0.6.
    std::size_t pos = 0;
    double value = 0.0;
    try {
      value = std::stod(item, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + ": bad number '" + item + "'");
    }
    if (pos != item.size()) {
      throw std::invalid_argument("--" + key + ": bad number '" + item + "'");
    }
    values.push_back(value);
  }
  return values;
}

// Shared by `mix` and `fleet` (per-server world): the model list, shares,
// distributions, budget, and swap cost.  When a replayed trace supplies
// `names_override`, its symbolic model names define the model list; an
// explicit conflicting --models is an error rather than a silent mismatch
// of model ids.
core::MixConfig MixConfigFrom(
    const ArgParser& args,
    const std::vector<std::string>* names_override = nullptr) {
  std::vector<std::string> model_names;
  if (names_override != nullptr) {
    if (const auto flag = args.GetString("models")) {
      if (SplitList(*flag) != *names_override) {
        throw std::invalid_argument(
            "--models conflicts with the replayed trace's models[]; drop "
            "the flag or re-capture");
      }
    }
    model_names = *names_override;
  } else {
    model_names = SplitList(args.GetString("models", "resnet,mobilenet"));
  }
  const auto shares = GetDoubleList(args, "shares", model_names.size());
  const auto medians = GetDoubleList(args, "medians", model_names.size());
  const double default_median = args.GetDouble("median", 6.0);

  core::MixConfig mc;
  for (std::size_t i = 0; i < model_names.size(); ++i) {
    core::MixModelConfig m;
    m.model = model_names[i];
    m.share = shares.empty() ? 1.0 : shares[i];
    m.dist_median = medians.empty() ? default_median : medians[i];
    m.dist_sigma = args.GetDouble("sigma", m.dist_sigma);
    mc.models.push_back(std::move(m));
  }
  const long long max_batch = args.GetInt("max-batch", 32);
  if (max_batch < 1 || max_batch > 4096) {
    throw std::invalid_argument(
        "--max-batch: expected an integer in [1, 4096], got " +
        std::to_string(max_batch));
  }
  mc.max_batch = static_cast<int>(max_batch);
  mc.sla_n = args.GetDouble("sla-n", 1.5);
  mc.num_gpus = static_cast<int>(GetCount(args, "gpus", 8));
  mc.gpc_budget = static_cast<int>(GetCount(args, "budget", 48));
  mc.swap_cost_us = args.GetDouble("swap-cost-us", 0.0);
  if (mc.swap_cost_us < 0.0) {
    throw std::invalid_argument("--swap-cost-us: expected >= 0, got " +
                                std::to_string(mc.swap_cost_us));
  }
  return mc;
}

// ---- Scenario / capture / replay plumbing ---------------------------------
//
// Every trace-driven subcommand resolves its workload the same way:
//   --replay-trace PATH   -> the captured document verbatim, or else
//   --scenario REF        -> the testbed's spec reshaped by the preset, or
//   (neither)             -> the testbed's spec unmodified (steady), which
//                            is bit-identical to the legacy generators.
// --capture-trace PATH then saves whatever was run.

// The scenario reference driving this run, for report labels.
std::string ScenarioLabel(const ArgParser& args) {
  return args.GetString("scenario", "steady");
}

// Loads --replay-trace PATH; nullopt when the option is absent.  Replay is
// exclusive with --scenario: the trace is fixed, reshaping it is a
// contradiction.
std::optional<workload::TraceDocument> LoadReplayDoc(const ArgParser& args) {
  const auto path = args.GetString("replay-trace");
  if (!path) return std::nullopt;
  if (args.GetString("scenario")) {
    throw std::invalid_argument(
        "--scenario cannot reshape a replayed trace; drop one of "
        "--scenario/--replay-trace");
  }
  auto doc = workload::LoadTraceFile(*path);
  std::cerr << "replay: " << *path << " (" << doc.trace.size()
            << " queries, " << doc.models.size() << " models)\n";
  return doc;
}

// Writes the run's workload to --capture-trace PATH as a
// paris-elsa-trace-v1 document (models[] symbolic, see workload/trace_io.h).
void MaybeCaptureTrace(const ArgParser& args,
                       const workload::QueryTrace& trace,
                       std::vector<std::string> models, std::string label) {
  const auto path = args.GetString("capture-trace");
  if (!path) return;
  if (path->empty()) {
    throw std::invalid_argument("--capture-trace: expected a file path");
  }
  workload::TraceDocument doc;
  doc.scenario = std::move(label);
  doc.models = std::move(models);
  doc.trace = trace;
  workload::SaveTraceFile(*path, doc);
  std::cerr << "capture: " << *path << "\n";
}

// Applies --scenario NAME[:key=val,...] onto the testbed-derived spec and
// drains it on a fresh Rng(seed); without the option the spec runs
// unmodified.
workload::QueryTrace ScenarioTraceFrom(const ArgParser& args,
                                       workload::ScenarioSpec spec,
                                       std::size_t num_queries,
                                       std::uint64_t seed) {
  if (const auto ref = args.GetString("scenario")) {
    workload::ApplyScenario(spec, *ref);
  }
  return workload::GenerateScenarioTrace(spec, num_queries, seed);
}

struct ResolvedWorkload {
  workload::QueryTrace trace;
  std::string label;  // scenario name (or the replayed document's label)
};

// The one workload resolution `mix` and `fleet` share, so scenario options
// apply identically to both (and to any standalone replay of a captured
// fleet sub-trace).
ResolvedWorkload ResolveMixWorkload(
    const ArgParser& args, const core::MixTestbed& tb,
    const std::optional<workload::TraceDocument>& replay, double rate_qps,
    std::size_t num_queries, std::uint64_t seed) {
  ResolvedWorkload w;
  if (replay) {
    w.trace = replay->trace;
    w.label = replay->scenario.empty() ? "replay" : replay->scenario;
  } else {
    w.trace =
        ScenarioTraceFrom(args, tb.ScenarioFor(rate_qps), num_queries, seed);
    w.label = ScenarioLabel(args);
  }
  MaybeCaptureTrace(args, w.trace, tb.ModelNames(), w.label);
  return w;
}

int CmdProfile(const ArgParser& args) {
  const core::Testbed tb(ConfigFrom(args));
  tb.profile().SaveCsv(std::cout);
  return 0;
}

int CmdPlan(const ArgParser& args) {
  const core::Testbed tb(ConfigFrom(args));
  const auto plan = tb.PlanParis();
  std::cout << "model:      " << tb.config().model_name << "\n"
            << "budget:     " << tb.table1().gpc_budget << " GPCs on "
            << tb.table1().num_gpus << " GPUs\n"
            << "sla:        " << TicksToMs(tb.sla_target()) << " ms\n"
            << "plan:       " << plan.Summary() << "\n"
            << "placement:  " << plan.layout.ToString() << "\n"
            << "rationale:  " << plan.rationale << "\n";
  return 0;
}

int CmdSimulate(const ArgParser& args) {
  // --jobs is validated for interface uniformity, but a single simulation
  // (and the serial bisection behind auto rate) runs on one thread; the
  // emitted report records the thread count actually used.
  GetJobs(args);
  CheckJsonSink(args);
  const auto replay = LoadReplayDoc(args);
  core::TestbedConfig config = ConfigFrom(args);
  if (replay) {
    if (replay->models.size() != 1) {
      throw std::invalid_argument(
          "simulate replays single-model traces; the document carries " +
          std::to_string(replay->models.size()) +
          " models (use mix or fleet)");
    }
    if (const auto flag = args.GetString("model");
        flag && *flag != replay->models[0]) {
      throw std::invalid_argument(
          "--model conflicts with the replayed trace's model '" +
          replay->models[0] + "'");
    }
    config.model_name = replay->models[0];
  }
  const core::Testbed tb(std::move(config));
  const auto plan = PlanFrom(tb, args.GetString("design", "paris"));
  const auto kind = SchedulerFrom(args.GetString("scheduler", "elsa"));

  core::RunOptions run;
  run.num_queries = GetCount(args, "queries", 20000);
  run.seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));
  run.rate_qps = args.GetDouble("rate", 0.0);
  if (run.rate_qps <= 0.0 && !replay) {
    const auto bound = core::LatencyBoundedThroughput(
        tb, plan, kind, TicksToMs(tb.sla_target()));
    run.rate_qps = 0.85 * bound.qps;
    std::cerr << "auto rate: " << run.rate_qps << " qps\n";
  }

  workload::QueryTrace trace;
  std::string scenario_label;
  if (replay) {
    trace = replay->trace;
    scenario_label = replay->scenario.empty() ? "replay" : replay->scenario;
    run.rate_qps = trace.OfferedQps();
  } else {
    trace = ScenarioTraceFrom(args, tb.ScenarioFor(run.rate_qps),
                              run.num_queries, run.seed);
    scenario_label = ScenarioLabel(args);
  }
  MaybeCaptureTrace(args, trace, {tb.config().model_name}, scenario_label);

  auto scheduler = tb.MakeScheduler(kind);
  const auto stats =
      tb.RunTrace(plan, *scheduler, trace, run.seed).Stats(tb.sla_target());

  Table t({"metric", "value"});
  t.AddRow({"design", plan.Summary()});
  t.AddRow({"scheduler", ToString(kind)});
  t.AddRow({"offered qps", Table::Num(run.rate_qps, 1)});
  t.AddRow({"achieved qps", Table::Num(stats.achieved_qps, 1)});
  t.AddRow({"mean ms", Table::Num(stats.mean_latency_ms, 3)});
  t.AddRow({"p50 ms", Table::Num(stats.p50_latency_ms, 3)});
  t.AddRow({"p95 ms", Table::Num(stats.p95_latency_ms, 3)});
  t.AddRow({"p99 ms", Table::Num(stats.p99_latency_ms, 3)});
  t.AddRow({"SLA violation %", Table::Num(100 * stats.sla_violation_rate, 2)});
  t.AddRow({"GPU utilization %",
            Table::Num(100 * stats.mean_worker_utilization, 1)});
  if (args.HasFlag("csv")) {
    t.PrintCsv(std::cout);
  } else {
    t.Print(std::cout);
  }

  core::Json data = core::Json::Object();
  data.Set("model", tb.config().model_name);
  data.Set("design", plan.Summary());
  data.Set("scheduler", core::ToString(kind));
  data.Set("scenario", scenario_label);
  data.Set("offered_qps", run.rate_qps);
  data.Set("achieved_qps", stats.achieved_qps);
  data.Set("mean_ms", stats.mean_latency_ms);
  data.Set("p50_ms", stats.p50_latency_ms);
  data.Set("p95_ms", stats.p95_latency_ms);
  data.Set("p99_ms", stats.p99_latency_ms);
  data.Set("sla_violation_rate", stats.sla_violation_rate);
  data.Set("utilization", stats.mean_worker_utilization);
  auto report = core::MakeBenchReport("cli_simulate", false, /*jobs=*/1);
  report.Set("data", std::move(data));
  MaybeWriteJson(args, std::move(report));
  return 0;
}

int CmdSweep(const ArgParser& args) {
  const int jobs = GetJobs(args);
  CheckJsonSink(args);
  const core::Testbed tb(ConfigFrom(args));
  const double sla_ms = TicksToMs(tb.sla_target());
  core::SearchOptions search;
  search.num_queries = GetCount(args, "queries", 4000);
  search.jobs = jobs;

  Table t({"design", "qps", "normalized"});
  std::vector<core::ProbeSpec> specs;
  for (int size : {7, 3, 2, 1}) {
    specs.push_back({"GPU(" + std::to_string(size) + ")+FIFS",
                     tb.PlanHomogeneous(size), core::SchedulerKind::kFifs,
                     sched::ElsaParams{}});
  }
  specs.push_back({"Random+ELSA", tb.PlanRandom(), core::SchedulerKind::kElsa,
                   sched::ElsaParams{}});
  specs.push_back({"PARIS+FIFS", tb.PlanParis(), core::SchedulerKind::kFifs,
                   sched::ElsaParams{}});
  specs.push_back({"PARIS+ELSA", tb.PlanParis(), core::SchedulerKind::kElsa,
                   sched::ElsaParams{}});

  // The designs are independent probes; fan out across --jobs threads.
  const auto results =
      core::LatencyBoundedThroughputBatch(tb, specs, sla_ms, search);

  core::Json design_results = core::Json::Array();
  double base = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (base == 0.0) base = results[i].qps;
    const double norm = base > 0 ? results[i].qps / base : 0.0;
    t.AddRow({specs[i].label, Table::Num(results[i].qps, 0),
              Table::Num(norm, 2)});
    core::Json d = core::ToJson(results[i]);
    d.Set("design", specs[i].label);
    d.Set("normalized", norm);
    design_results.Add(std::move(d));
  }
  if (args.HasFlag("csv")) {
    t.PrintCsv(std::cout);
  } else {
    t.Print(std::cout);
  }

  core::Json data = core::Json::Object();
  data.Set("model", tb.config().model_name);
  data.Set("sla_ms", sla_ms);
  data.Set("baseline", specs.front().label);
  data.Set("designs", std::move(design_results));
  auto report = core::MakeBenchReport("cli_sweep", false, jobs);
  report.Set("data", std::move(data));
  MaybeWriteJson(args, std::move(report));
  return 0;
}

// Epoch granularity shared by both elastic forms: ceil(trace/epochs),
// --epochs validated against the actual trace length.
std::size_t QueriesPerEpoch(const ArgParser& args, std::size_t num_queries) {
  const std::size_t epochs = GetCount(args, "epochs", 8);
  if (epochs < 1 || epochs > num_queries) {
    throw std::invalid_argument(
        "--epochs: expected an integer in [1, #queries], got " +
        std::to_string(epochs));
  }
  return (num_queries + epochs - 1) / epochs;
}

online::ElasticConfig ElasticConfigFrom(const ArgParser& args,
                                        std::size_t queries_per_epoch) {
  const double downtime_ms = args.GetDouble("downtime-ms", 2000.0);
  if (downtime_ms < 0.0) {
    throw std::invalid_argument("--downtime-ms: expected >= 0, got " +
                                std::to_string(downtime_ms));
  }
  online::ElasticConfig econfig;
  econfig.drift_threshold = args.GetDouble("drift", 0.15);
  econfig.reconfig_downtime = MsToTicks(downtime_ms);
  // Trust the estimator once it has seen half an epoch (capped at the
  // library default) so short smoke runs can still reconfigure.
  econfig.min_observations =
      std::min<std::size_t>(econfig.min_observations, queries_per_epoch / 2);
  return econfig;
}

int ReportElastic(const ArgParser& args, const online::ElasticResult& result,
                  const std::string& model_label, core::SchedulerKind kind,
                  double rate_qps, std::size_t queries_per_epoch,
                  const online::ElasticConfig& econfig, std::uint64_t seed,
                  const std::string& scenario_label) {
  Table e({"epoch", "layout", "p95 ms", "viol. %", "stalled", "reconfig"});
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const auto& ep = result.epochs[i];
    partition::PartitionPlan tmp;
    tmp.instance_gpcs = ep.layout;
    e.AddRow({Table::Int(static_cast<long long>(i)), tmp.Summary(),
              Table::Num(ep.p95_ms, 2), Table::Num(100 * ep.violation_rate, 2),
              Table::Int(static_cast<long long>(ep.stalled)),
              ep.reconfigured ? "yes" : ""});
  }
  Table t({"metric", "value"});
  t.AddRow({"model", model_label});
  t.AddRow({"scheduler", ToString(kind)});
  t.AddRow({"scenario", scenario_label});
  t.AddRow({"offered qps", Table::Num(rate_qps, 1)});
  t.AddRow({"reconfigurations", Table::Int(result.reconfigurations)});
  t.AddRow({"stalled queries",
            Table::Int(static_cast<long long>(result.total.reconfig_stalled))});
  t.AddRow({"p95 ms", Table::Num(result.total.p95_latency_ms, 3)});
  t.AddRow({"SLA violation %",
            Table::Num(100 * result.total.sla_violation_rate, 2)});
  if (args.HasFlag("csv")) {
    e.PrintCsv(std::cout);
    t.PrintCsv(std::cout);
  } else {
    e.Print(std::cout);
    std::cout << "\n";
    t.Print(std::cout);
  }

  core::Json data = core::ToJson(result);
  data.Set("model", model_label);
  data.Set("scheduler", core::ToString(kind));
  data.Set("scenario", scenario_label);
  data.Set("offered_qps", rate_qps);
  data.Set("queries_per_epoch", static_cast<std::uint64_t>(queries_per_epoch));
  data.Set("drift_threshold", econfig.drift_threshold);
  data.Set("downtime_ms", TicksToMs(econfig.reconfig_downtime));
  data.Set("seed", seed);
  auto report = core::MakeBenchReport("cli_elastic", false, /*jobs=*/1);
  report.Set("data", std::move(data));
  MaybeWriteJson(args, std::move(report));
  return 0;
}

// Multi-model elastic serving: one continuous run whose mix the
// MixedRepartitionController chases (re-deriving per-model budgets from
// the live shares).  The designed demo of the mix-drift machinery:
//   paris_elsa_cli elastic --models resnet,mobilenet --scenario mixdrift
int CmdElasticMix(const ArgParser& args,
                  const std::optional<workload::TraceDocument>& replay) {
  const auto kind = SchedulerFrom(args.GetString("scheduler", "elsa"));
  const auto seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));
  const double rate_qps = args.GetDouble("rate", 300.0);
  const std::size_t num_queries = GetCount(args, "queries", 12000);

  const core::MixConfig mc =
      MixConfigFrom(args, replay ? &replay->models : nullptr);
  const core::MixTestbed tb(mc);
  const auto workload =
      ResolveMixWorkload(args, tb, replay, rate_qps, num_queries, seed);

  const std::size_t queries_per_epoch =
      QueriesPerEpoch(args, workload.trace.size());
  const online::ElasticConfig econfig =
      ElasticConfigFrom(args, queries_per_epoch);
  online::MixedRepartitionController controller(
      tb.repertoire(), tb.cluster(), mc.gpc_budget, tb.mix(), mc.paris,
      econfig);
  online::ElasticServerSim sim(
      controller, tb.repertoire(), [&] { return tb.MakeScheduler(kind); },
      tb.sla_target(), queries_per_epoch, seed,
      UsToTicks(mc.swap_cost_us));
  const auto result = sim.Run(workload.trace);

  std::string model_label;
  for (const auto& name : tb.ModelNames()) {
    if (!model_label.empty()) model_label += "+";
    model_label += name;
  }
  return ReportElastic(args, result, model_label, kind, rate_qps,
                       queries_per_epoch, econfig, seed, workload.label);
}

int CmdElastic(const ArgParser& args) {
  CheckJsonSink(args);
  const auto replay = LoadReplayDoc(args);
  // Multi-model runs (an explicit --models list, or a replayed multi-model
  // capture) go through the mixed controller.
  if (args.GetString("models") || (replay && replay->models.size() > 1)) {
    return CmdElasticMix(args, replay);
  }

  core::TestbedConfig config = ConfigFrom(args);
  if (replay) {
    if (const auto flag = args.GetString("model");
        flag && *flag != replay->models[0]) {
      throw std::invalid_argument(
          "--model conflicts with the replayed trace's model '" +
          replay->models[0] + "'");
    }
    config.model_name = replay->models[0];
  }
  const core::Testbed tb(std::move(config));
  const auto kind = SchedulerFrom(args.GetString("scheduler", "elsa"));

  const std::size_t num_queries = GetCount(args, "queries", 12000);
  const double drift_median = args.GetDouble("drift-median", 18.0);
  const auto seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));
  const double rate_qps = args.GetDouble("rate", 300.0);
  const auto& cfg = tb.config();

  workload::QueryTrace trace;
  std::string scenario_label;
  if (replay) {
    trace = replay->trace;
    scenario_label = replay->scenario.empty() ? "replay" : replay->scenario;
  } else if (args.GetString("scenario")) {
    trace = ScenarioTraceFrom(args, tb.ScenarioFor(rate_qps), num_queries,
                              seed);
    scenario_label = ScenarioLabel(args);
  } else {
    // Legacy day-cycle drift: base-median phase, drifted-median phase, and
    // back (batch-size drift, the single-model controller's target).
    workload::LogNormalBatchDist base(cfg.dist_median, cfg.dist_sigma,
                                      cfg.max_batch);
    workload::LogNormalBatchDist drifted(drift_median, cfg.dist_sigma,
                                         cfg.max_batch);
    workload::PoissonArrivals arrivals(rate_qps);
    Rng rng(seed);
    const std::size_t third = num_queries / 3;
    workload::PhasedTraceSource day_cycle(
        arrivals,
        {{&base, third}, {&drifted, third}, {&base, num_queries - 2 * third}});
    trace = workload::Take(day_cycle, num_queries, rng);
    scenario_label = "drift-phases";
  }
  MaybeCaptureTrace(args, trace, {cfg.model_name}, scenario_label);

  const std::size_t queries_per_epoch = QueriesPerEpoch(args, trace.size());
  const online::ElasticConfig econfig =
      ElasticConfigFrom(args, queries_per_epoch);
  online::RepartitionController controller(tb.profile(), tb.cluster(),
                                           tb.table1().gpc_budget, tb.dist(),
                                           cfg.paris, econfig);
  online::ElasticServerSim sim(
      controller, tb.profile(), [&] { return tb.MakeScheduler(kind); },
      tb.ActualLatency(), tb.sla_target(), queries_per_epoch, seed);
  const auto result = sim.Run(trace);

  return ReportElastic(args, result, cfg.model_name, kind, rate_qps,
                       queries_per_epoch, econfig, seed, scenario_label);
}

int CmdMix(const ArgParser& args) {
  CheckJsonSink(args);
  const auto replay = LoadReplayDoc(args);
  const core::MixConfig mc =
      MixConfigFrom(args, replay ? &replay->models : nullptr);
  const core::MixTestbed tb(mc);
  const auto kind = SchedulerFrom(args.GetString("scheduler", "elsa"));
  const double rate_qps = args.GetDouble("rate", 300.0);
  const std::size_t num_queries = GetCount(args, "queries", 20000);
  const auto seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));

  const auto mixed = tb.PlanMixed();
  const auto workload =
      ResolveMixWorkload(args, tb, replay, rate_qps, num_queries, seed);
  const auto& trace = workload.trace;
  auto scheduler = tb.MakeScheduler(kind);
  const auto result =
      tb.Run(mixed.plan.instance_gpcs, *scheduler, trace, seed);
  const auto stats = result.Stats(tb.sla_target());

  Table t({"metric", "value"});
  t.AddRow({"design", mixed.plan.Summary()});
  t.AddRow({"scheduler", ToString(kind)});
  t.AddRow({"offered qps", Table::Num(rate_qps, 1)});
  t.AddRow({"achieved qps", Table::Num(stats.achieved_qps, 1)});
  t.AddRow({"p95 ms", Table::Num(stats.p95_latency_ms, 3)});
  t.AddRow({"p99 ms", Table::Num(stats.p99_latency_ms, 3)});
  t.AddRow({"SLA violation %", Table::Num(100 * stats.sla_violation_rate, 2)});
  t.AddRow({"model swaps",
            Table::Int(static_cast<long long>(stats.model_swaps))});

  // Report the *normalized* traffic split, not the raw weights (which
  // need not sum to 1, e.g. when --shares is omitted).
  const auto norm_shares = tb.mix().NormalizedShares();
  Table per_model({"model", "share", "budget", "queries", "p95 ms",
                   "viol. %", "swaps"});
  for (const auto& m : stats.models) {
    const auto idx = static_cast<std::size_t>(m.model);
    per_model.AddRow(
        {tb.repertoire().name(m.model),
         Table::Num(norm_shares[idx], 2),
         Table::Int(mixed.budgets[idx]),
         Table::Int(static_cast<long long>(m.completed)),
         Table::Num(m.p95_latency_ms, 3),
         Table::Num(100 * m.sla_violation_rate, 2),
         Table::Int(static_cast<long long>(m.swaps))});
  }
  if (args.HasFlag("csv")) {
    t.PrintCsv(std::cout);
    per_model.PrintCsv(std::cout);
  } else {
    t.Print(std::cout);
    std::cout << "\n";
    per_model.Print(std::cout);
  }

  core::Json data = core::ToJson(stats);
  core::Json models = core::Json::Array();
  for (std::size_t i = 0; i < mc.models.size(); ++i) {
    core::Json m = core::Json::Object();
    m.Set("model", mc.models[i].model);
    m.Set("share", norm_shares[i]);
    m.Set("budget_gpcs", mixed.budgets[i]);
    models.Add(std::move(m));
  }
  data.Set("mix", std::move(models));
  data.Set("design", mixed.plan.Summary());
  data.Set("scheduler", core::ToString(kind));
  data.Set("scenario", workload.label);
  data.Set("offered_qps", rate_qps);
  data.Set("swap_cost_us", mc.swap_cost_us);
  data.Set("seed", seed);
  auto report = core::MakeBenchReport("cli_mix", false, /*jobs=*/1);
  report.Set("data", std::move(data));
  MaybeWriteJson(args, std::move(report));
  return 0;
}

int CmdFleet(const ArgParser& args) {
  const int jobs = GetJobs(args);
  CheckJsonSink(args);
  const auto replay = LoadReplayDoc(args);

  core::FleetTestbedConfig fc;
  fc.mix = MixConfigFrom(args, replay ? &replay->models : nullptr);
  fc.num_servers = static_cast<int>(GetCount(args, "servers", 4));
  if (fc.num_servers < 1) {
    throw std::invalid_argument("--servers: expected >= 1");
  }
  const std::string placement_name = args.GetString("placement", "uniform");
  const auto placement = fleet::ParsePlacementKind(placement_name);
  if (!placement) {
    throw std::invalid_argument("unknown --placement: " + placement_name +
                                " (expected uniform|sharded)");
  }
  fc.placement = *placement;
  fc.replicas = static_cast<int>(GetCount(args, "replicas", 2));
  const std::string policy_name = args.GetString("policy", "hash");
  const auto policy = fleet::ParseRouterPolicy(policy_name);
  if (!policy) {
    throw std::invalid_argument("unknown --policy: " + policy_name +
                                " (expected hash|least|po2c)");
  }
  fc.policy = *policy;
  fc.scheduler = SchedulerFrom(args.GetString("scheduler", "elsa"));
  const auto seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));
  fc.seed = seed;

  const core::FleetTestbed tb(fc);
  double rate_qps =
      args.GetDouble("rate", 300.0 * static_cast<double>(fc.num_servers));
  const std::size_t num_queries = GetCount(args, "queries", 100000);
  const auto workload =
      ResolveMixWorkload(args, tb.mix(), replay, rate_qps, num_queries, seed);
  const auto& trace = workload.trace;
  if (replay) rate_qps = trace.OfferedQps();
  // --faults NAME[:k=v,...] runs the fault-tolerant driver; "none" (or no
  // flag) takes the fault-free batch path unchanged.
  fleet::FleetResult result;
  std::string faults_label = "none";
  if (const auto fref = args.GetString("faults")) {
    const fleet::FaultPlan plan =
        tb.ResolveFaults(fleet::ParseFaultRef(*fref), trace);
    faults_label = *fref;
    result = tb.RunWithFaults(trace, plan, jobs);
  } else {
    result = tb.Run(trace, jobs);
  }
  const auto stats = result.Stats(tb.sla_target(), /*warmup_fraction=*/0.1,
                                  jobs);

  Table t({"metric", "value"});
  t.AddRow({"servers", Table::Int(fc.num_servers)});
  t.AddRow({"policy", policy_name});
  t.AddRow({"placement", placement_name});
  t.AddRow({"scheduler", ToString(fc.scheduler)});
  t.AddRow({"offered qps", Table::Num(rate_qps, 1)});
  t.AddRow({"fleet qps", Table::Num(stats.aggregate.achieved_qps, 1)});
  t.AddRow({"p95 ms", Table::Num(stats.aggregate.p95_latency_ms, 3)});
  t.AddRow({"p99 ms", Table::Num(stats.aggregate.p99_latency_ms, 3)});
  t.AddRow({"SLA violation %",
            Table::Num(100 * stats.aggregate.sla_violation_rate, 2)});
  t.AddRow({"model swaps",
            Table::Int(static_cast<long long>(stats.aggregate.model_swaps))});
  if (stats.fault.faulted) {
    const fleet::FaultSummary& ft = stats.fault;
    double min_avail = 1.0;
    for (const double a : ft.availability) min_avail = std::min(min_avail, a);
    t.AddRow({"faults", faults_label});
    t.AddRow({"injected", Table::Int(static_cast<long long>(ft.injected))});
    t.AddRow({"completed", Table::Int(static_cast<long long>(ft.completed))});
    t.AddRow({"failed", Table::Int(static_cast<long long>(ft.failed))});
    t.AddRow({"shed", Table::Int(static_cast<long long>(ft.shed))});
    t.AddRow({"retried", Table::Int(static_cast<long long>(ft.retried))});
    t.AddRow({"rerouted", Table::Int(static_cast<long long>(ft.rerouted))});
    t.AddRow({"repartitions",
              Table::Int(static_cast<long long>(ft.repartitions))});
    t.AddRow({"min availability", Table::Num(min_avail, 4)});
    if (ft.incident_completions > 0) {
      t.AddRow({"p99 incident ms", Table::Num(ft.p99_incident_ms, 3)});
    }
  }

  Table per_server({"server", "routed", "qps", "p95 ms", "viol. %"});
  for (std::size_t s = 0; s < stats.per_server.size(); ++s) {
    const auto& ss = stats.per_server[s];
    per_server.AddRow(
        {Table::Int(static_cast<long long>(s)),
         Table::Int(static_cast<long long>(stats.routed_per_server[s])),
         Table::Num(ss.achieved_qps, 1), Table::Num(ss.p95_latency_ms, 3),
         Table::Num(100 * ss.sla_violation_rate, 2)});
  }
  if (args.HasFlag("csv")) {
    t.PrintCsv(std::cout);
    per_server.PrintCsv(std::cout);
  } else {
    t.Print(std::cout);
    std::cout << "\n";
    per_server.Print(std::cout);
  }

  core::Json data = core::ToJson(stats);
  data.Set("policy", policy_name);
  data.Set("placement", placement_name);
  data.Set("scheduler", core::ToString(fc.scheduler));
  data.Set("scenario", workload.label);
  data.Set("offered_qps", rate_qps);
  data.Set("swap_cost_us", fc.mix.swap_cost_us);
  data.Set("seed", seed);
  if (stats.fault.faulted) data.Set("faults", faults_label);
  auto report = core::MakeBenchReport("cli_fleet", false, jobs);
  report.Set("data", std::move(data));
  MaybeWriteJson(args, std::move(report));
  return 0;
}

int CmdTrace(const ArgParser& args) {
  const auto replay = LoadReplayDoc(args);
  const auto config = ConfigFrom(args);
  const auto seed = static_cast<std::uint64_t>(GetCount(args, "seed", 1));

  workload::QueryTrace trace;
  std::vector<std::string> models;
  std::string scenario_label;
  if (replay) {
    // JSON -> CSV conversion path (stdout stays CSV either way).
    trace = replay->trace;
    models = replay->models;
    scenario_label = replay->scenario.empty() ? "replay" : replay->scenario;
  } else {
    workload::ScenarioSpec spec;
    spec.rate.base_qps = args.GetDouble("rate", 100.0);
    spec.max_batch = config.max_batch;
    workload::ComponentSpec c;
    c.model_name = config.model_name;
    c.median = config.dist_median;
    c.sigma = config.dist_sigma;
    spec.components.push_back(std::move(c));
    trace = ScenarioTraceFrom(args, std::move(spec),
                              GetCount(args, "queries", 10000), seed);
    models = {config.model_name};
    scenario_label = ScenarioLabel(args);
  }
  MaybeCaptureTrace(args, trace, std::move(models), scenario_label);
  trace.SaveCsv(std::cout);
  return 0;
}

void PrintUsage(std::ostream& os) {
  os << "usage: paris_elsa_cli "
        "<profile|plan|simulate|sweep|trace|elastic|mix|fleet> "
        "[--model M] [--design D] [--scheduler S] [--rate QPS] "
        "[--queries N] [--median M] [--sigma S] [--max-batch B] "
        "[--sla-n N] [--seed S] [--jobs N] [--json PATH] [--csv] "
        "[--scenario NAME[:k=v,...]] [--capture-trace PATH] "
        "[--replay-trace PATH] "
        "[--epochs N] [--drift T] [--drift-median M] [--downtime-ms D] "
        "[--models A,B] [--shares X,Y] [--medians X,Y] [--swap-cost-us C] "
        "[--budget G] [--gpus N] [--servers N] [--policy P] "
        "[--placement K] [--replicas R] [--faults NAME[:k=v,...]] "
        "[--help]\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv, /*flags=*/{"csv", "help", "h"});
  const auto known = std::vector<std::string>{
      "model", "design", "scheduler", "rate", "queries", "median", "sigma",
      "max-batch", "sla-n", "seed", "jobs", "json", "csv", "scenario",
      "capture-trace", "replay-trace", "epochs", "drift", "drift-median",
      "downtime-ms", "models", "shares", "medians", "swap-cost-us", "budget",
      "gpus", "servers", "policy", "placement", "replicas", "faults", "help",
      "h"};
  try {
    const auto sub = args.Subcommand();
    if (args.HasFlag("help") || args.HasFlag("h") ||
        (sub && *sub == "help")) {
      PrintUsage(std::cout);
      return 0;
    }
    for (const auto& key : args.UnknownKeys(known)) {
      std::cerr << "warning: unknown option " << args.Spelling(key) << "\n";
    }
    if (!sub) {
      PrintUsage(std::cerr);
      return 2;
    }
    if (*sub == "profile") return CmdProfile(args);
    if (*sub == "plan") return CmdPlan(args);
    if (*sub == "simulate") return CmdSimulate(args);
    if (*sub == "sweep") return CmdSweep(args);
    if (*sub == "trace") return CmdTrace(args);
    if (*sub == "elastic") return CmdElastic(args);
    if (*sub == "mix") return CmdMix(args);
    if (*sub == "fleet") return CmdFleet(args);
    std::cerr << "unknown subcommand: " << *sub << "\n";
    PrintUsage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
