#!/usr/bin/env bash
# Build and run every bench target with a short smoke configuration.
#
# Usage: tools/run_all_benches.sh [build-dir]
#
#   build-dir   CMake build directory (default: build). Configured on the
#               fly if it does not exist yet.
#
# PE_BENCH_SMOKE=1 is exported so benches that use bench::DefaultSearch()
# run a reduced search (500 queries, 5 iterations) and finish in seconds.
# Unset it (PE_BENCH_SMOKE=0 tools/run_all_benches.sh) for paper-fidelity
# numbers.  PE_BENCH_JOBS caps the experiment-engine threads (default:
# hardware concurrency).
#
# Benches that support machine-readable output write one JSON report each
# to <build-dir>/bench_json/; after the run they are aggregated into
# <build-dir>/bench_results.json (CI uploads that file as an artifact).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
json_dir="${build_dir}/bench_json"
results_json="${build_dir}/bench_results.json"

if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}"
fi

mapfile -t bench_sources < <(ls "${repo_root}"/bench/bench_*.cc)
bench_targets=()
for src in "${bench_sources[@]}"; do
  name="$(basename "${src}" .cc)"
  [[ "${name}" == "bench_util" ]] && continue
  # bench_micro_engine is only configured when google-benchmark is present.
  # Config-mode find_package writes "benchmark_DIR-NOTFOUND" to the cache
  # when the package is missing, so require a found (non-NOTFOUND) entry.
  if [[ "${name}" == "bench_micro_engine" ]] &&
     ! grep "^benchmark_DIR:" "${build_dir}/CMakeCache.txt" 2>/dev/null |
       grep -qv -- "-NOTFOUND"; then
    echo "--- skipping ${name} (google-benchmark not available) ---"
    continue
  fi
  bench_targets+=("${name}")
done

cmake --build "${build_dir}" -j "$(nproc)" -- "${bench_targets[@]}"

export PE_BENCH_SMOKE="${PE_BENCH_SMOKE:-1}"
export PE_BENCH_JSON_DIR="${json_dir}"
mkdir -p "${json_dir}"
rm -f "${json_dir}"/*.json "${results_json}"

failures=0
for name in "${bench_targets[@]}"; do
  echo
  echo "=== ${name} (PE_BENCH_SMOKE=${PE_BENCH_SMOKE}) ==="
  if [[ "${name}" == "bench_micro_engine" ]]; then
    # google-benchmark harness: keep the smoke run short explicitly.
    # (Plain seconds value: the "0.01s" suffix form needs benchmark >= 1.8.)
    args=(--benchmark_min_time=0.01)
  else
    args=()
  fi
  if ! "${build_dir}/bench/${name}" "${args[@]}"; then
    echo "!!! ${name} FAILED"
    failures=$((failures + 1))
  fi
done

echo
if [[ "${failures}" -ne 0 ]]; then
  echo "${failures} bench(es) failed"
  exit 1
fi
echo "all ${#bench_targets[@]} benches completed"

# Expected report count, derived from the bench sources that actually ran:
# every bench calling bench::WriteReport emits exactly one JSON document.
# Deriving (rather than hard-coding) the count means adding or removing a
# JSON-emitting bench cannot silently rot the validation below or in CI.
expected_reports=0
for name in "${bench_targets[@]}"; do
  if grep -q "bench::WriteReport(" "${repo_root}/bench/${name}.cc"; then
    expected_reports=$((expected_reports + 1))
  fi
done

# Aggregate the per-bench reports into one machine-readable document:
#   { "schema": "paris-elsa-bench-results-v1", "expected_reports": N,
#     "benches": [ <report>... ] }
shopt -s nullglob
json_files=("${json_dir}"/*.json)
shopt -u nullglob
if [[ "${#json_files[@]}" -ne "${expected_reports}" ]]; then
  # A shortfall means reports could not be written (e.g. unwritable
  # directory) or a bench silently skipped its emission -- that must not
  # look like success.
  echo "error: expected ${expected_reports} per-bench JSON report(s)" \
       "under ${json_dir}, found ${#json_files[@]}" >&2
  exit 1
fi
if command -v jq >/dev/null 2>&1; then
  jq -s --argjson n "${expected_reports}" \
    '{schema: "paris-elsa-bench-results-v1", expected_reports: $n, benches: .}' \
    "${json_files[@]}" > "${results_json}"
  jq empty "${results_json}"  # well-formedness check
else
  python3 - "${results_json}" "${expected_reports}" "${json_files[@]}" <<'PY'
import json, sys
out, expected, *files = sys.argv[1:]
doc = {"schema": "paris-elsa-bench-results-v1",
       "expected_reports": int(expected),
       "benches": [json.load(open(f)) for f in files]}
json.dump(doc, open(out, "w"), indent=2)
PY
fi
echo "collected ${#json_files[@]} JSON report(s) into ${results_json}"
